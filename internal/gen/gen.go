// Package gen builds the task graphs used by the paper's experiments and
// by the examples: the random layered DAGs of Section 6 (tasks in
// [80,120], per-task degree in [1,3], message volumes in [50,150]) plus
// the structured families the propositions reason about (forks,
// outforests, chains, joins, diamonds) and two realistic workflow shapes
// (a Montage-like mosaicking pipeline and an FFT butterfly).
//
//caft:deterministic
package gen

import (
	"fmt"
	"math/rand"

	"caft/internal/dag"
)

// RandomParams configures RandomLayered. The defaults (DefaultParams)
// follow Section 6 of the paper.
type RandomParams struct {
	MinTasks, MaxTasks   int     // v drawn uniformly from [MinTasks, MaxTasks]
	MinDegree, MaxDegree int     // out-degree per non-exit task, uniform
	MinVolume, MaxVolume float64 // edge data volume, uniform
}

// DefaultParams mirrors the paper: v in [80,120], degree in [1,3],
// volume in [50,150].
var DefaultParams = RandomParams{
	MinTasks: 80, MaxTasks: 120,
	MinDegree: 1, MaxDegree: 3,
	MinVolume: 50, MaxVolume: 150,
}

func (p RandomParams) volume(rng *rand.Rand) float64 {
	return p.MinVolume + rng.Float64()*(p.MaxVolume-p.MinVolume)
}

// RandomLayered generates a random DAG in the style used by the paper's
// simulations: tasks are ordered 0..v-1; every non-exit task receives an
// out-degree drawn from [MinDegree, MaxDegree] and sends to distinct
// random later tasks (within a bounded window, which keeps the graph
// layered rather than degenerate); every non-entry task is guaranteed at
// least one predecessor. Edges carry volumes drawn from
// [MinVolume, MaxVolume].
func RandomLayered(rng *rand.Rand, p RandomParams) *dag.DAG {
	if p.MinTasks <= 0 || p.MaxTasks < p.MinTasks {
		panic(fmt.Sprintf("gen: bad task range [%d,%d]", p.MinTasks, p.MaxTasks))
	}
	v := p.MinTasks
	if p.MaxTasks > p.MinTasks {
		v += rng.Intn(p.MaxTasks - p.MinTasks + 1)
	}
	g := dag.New(v)
	// Forward window: restricting targets to a window of ~v/8 keeps a
	// layered structure with depth around 8-15 for v~100, matching the
	// "1-3 edges per task" graphs in the scheduling literature.
	window := v / 8
	if window < 4 {
		window = 4
	}
	hasPred := make([]bool, v)
	for t := 0; t < v-1; t++ {
		deg := p.MinDegree
		if p.MaxDegree > p.MinDegree {
			deg += rng.Intn(p.MaxDegree - p.MinDegree + 1)
		}
		hi := t + window
		if hi > v-1 {
			hi = v - 1
		}
		span := hi - t // number of candidate targets in (t, hi]
		if deg > span {
			deg = span
		}
		seen := map[int]bool{}
		for d := 0; d < deg; d++ {
			to := t + 1 + rng.Intn(span)
			if seen[to] {
				continue
			}
			seen[to] = true
			g.AddEdge(dag.TaskID(t), dag.TaskID(to), p.volume(rng))
			hasPred[to] = true
		}
	}
	// Guarantee every non-entry-candidate task has a predecessor so the
	// graph does not fall apart into isolated tail tasks.
	for t := 1; t < v; t++ {
		if !hasPred[t] {
			lo := t - window
			if lo < 0 {
				lo = 0
			}
			from := lo + rng.Intn(t-lo)
			g.AddEdge(dag.TaskID(from), dag.TaskID(t), p.volume(rng))
			hasPred[t] = true
		}
	}
	return g
}

// Fork returns a fork graph: one root sending to n leaves. Fork graphs
// are the simplest outforest: Proposition 5.1 bounds CAFT's message
// count on them by e(ε+1).
func Fork(n int, volume float64) *dag.DAG {
	g := dag.New(n + 1)
	for i := 1; i <= n; i++ {
		g.AddEdge(0, dag.TaskID(i), volume)
	}
	return g
}

// Join returns the mirror of Fork: n sources feeding one sink.
func Join(n int, volume float64) *dag.DAG {
	g := dag.New(n + 1)
	sink := dag.TaskID(n)
	for i := 0; i < n; i++ {
		g.AddEdge(dag.TaskID(i), sink, volume)
	}
	return g
}

// Chain returns a linear chain of n tasks.
func Chain(n int, volume float64) *dag.DAG {
	g := dag.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(dag.TaskID(i), dag.TaskID(i+1), volume)
	}
	return g
}

// RandomOutForest returns a random forest of out-trees: every task has
// in-degree at most one (|Γ−(t)| ≤ 1), the family covered by
// Proposition 5.1. roots trees are grown over n total tasks; each
// non-root task picks its parent uniformly among the earlier tasks
// whose out-degree is still below maxDeg (maxDeg <= 0 means unbounded,
// reproducing the historical uniform-attachment behavior draw for
// draw). Edge volumes are uniform in [minVol, maxVol].
func RandomOutForest(rng *rand.Rand, n, roots, maxDeg int, minVol, maxVol float64) *dag.DAG {
	if roots < 1 {
		roots = 1
	}
	if roots > n {
		roots = n
	}
	g := dag.New(n)
	outdeg := make([]int, n)
	var eligible []int
	for t := roots; t < n; t++ {
		var parent int
		if maxDeg <= 0 {
			parent = rng.Intn(t)
		} else {
			// The first t tasks consumed t-roots parent slots out of a
			// capacity of t*maxDeg >= t, so some task always has spare
			// out-degree and eligible is never empty.
			eligible = eligible[:0]
			for c := 0; c < t; c++ {
				if outdeg[c] < maxDeg {
					eligible = append(eligible, c)
				}
			}
			parent = eligible[rng.Intn(len(eligible))]
		}
		outdeg[parent]++
		g.AddEdge(dag.TaskID(parent), dag.TaskID(t), minVol+rng.Float64()*(maxVol-minVol))
	}
	return g
}

// Diamond returns a width x depth diamond lattice: a source fans out to
// `width` parallel chains of length `depth` which join into a sink.
func Diamond(width, depth int, volume float64) *dag.DAG {
	g := dag.New(2 + width*depth)
	src, sink := dag.TaskID(0), dag.TaskID(1+width*depth)
	id := func(w, d int) dag.TaskID { return dag.TaskID(1 + w*depth + d) }
	for w := 0; w < width; w++ {
		g.AddEdge(src, id(w, 0), volume)
		for d := 0; d < depth-1; d++ {
			g.AddEdge(id(w, d), id(w, d+1), volume)
		}
		g.AddEdge(id(w, depth-1), sink, volume)
	}
	return g
}

// Stencil returns a depth x width grid where each interior task depends
// on its "left" and "up-left" neighbors of the previous row — the
// dependence pattern of 1-D stencil sweeps and dynamic-programming
// wavefronts.
func Stencil(rows, cols int, volume float64) *dag.DAG {
	g := dag.New(rows * cols)
	id := func(r, c int) dag.TaskID { return dag.TaskID(r*cols + c) }
	for r := 1; r < rows; r++ {
		for c := 0; c < cols; c++ {
			g.AddEdge(id(r-1, c), id(r, c), volume)
			if c > 0 {
				g.AddEdge(id(r-1, c-1), id(r, c), volume)
			}
		}
	}
	return g
}

// Montage returns a workflow shaped like the Montage astronomy
// mosaicking pipeline, a standard benchmark DAG for heterogeneous
// scheduling: nproj parallel reprojections, pairwise background fits
// between neighbors, a concentrating model fit, parallel background
// corrections, and a final co-add.
func Montage(nproj int, volume float64) *dag.DAG {
	if nproj < 2 {
		nproj = 2
	}
	g := &dag.DAG{}
	proj := make([]dag.TaskID, nproj)
	for i := range proj {
		proj[i] = g.AddTask(fmt.Sprintf("mProject%d", i))
	}
	diff := make([]dag.TaskID, nproj-1)
	for i := range diff {
		diff[i] = g.AddTask(fmt.Sprintf("mDiffFit%d", i))
		g.AddEdge(proj[i], diff[i], volume)
		g.AddEdge(proj[i+1], diff[i], volume)
	}
	model := g.AddTask("mConcatFit")
	for _, d := range diff {
		g.AddEdge(d, model, volume/2)
	}
	bg := make([]dag.TaskID, nproj)
	for i := range bg {
		bg[i] = g.AddTask(fmt.Sprintf("mBackground%d", i))
		g.AddEdge(model, bg[i], volume/4)
		g.AddEdge(proj[i], bg[i], volume)
	}
	add := g.AddTask("mAdd")
	for _, b := range bg {
		g.AddEdge(b, add, volume)
	}
	shrink := g.AddTask("mShrink")
	g.AddEdge(add, shrink, volume)
	return g
}

// FFT returns the task graph of a radix-2 FFT butterfly over 2^k points:
// k+1 ranks of 2^k tasks where rank r task i depends on tasks i and
// i XOR 2^r of the previous rank.
func FFT(k int, volume float64) *dag.DAG {
	n := 1 << k
	g := dag.New((k + 1) * n)
	id := func(rank, i int) dag.TaskID { return dag.TaskID(rank*n + i) }
	for rank := 1; rank <= k; rank++ {
		bit := 1 << (rank - 1)
		for i := 0; i < n; i++ {
			g.AddEdge(id(rank-1, i), id(rank, i), volume)
			g.AddEdge(id(rank-1, i^bit), id(rank, i), volume)
		}
	}
	return g
}
