package gen

import (
	"bytes"
	"testing"
)

// Every kind must build, and equal specs must produce byte-identical
// graphs — Build is the shared dispatch behind cmd/dagen and the caftd
// service, whose schedule cache keys on the spec.
func TestSpecBuildEveryKindDeterministic(t *testing.T) {
	kinds := []string{"random", "fork", "join", "chain", "outforest", "diamond", "stencil", "montage", "fft"}
	for _, kind := range kinds {
		sp := Spec{Kind: kind, N: 5, Seed: 3}
		g1, err := sp.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g1.NumTasks() == 0 {
			t.Fatalf("%s: empty graph", kind)
		}
		g2, err := sp.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var b1, b2 bytes.Buffer
		if err := g1.Write(&b1); err != nil {
			t.Fatal(err)
		}
		if err := g2.Write(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s: two builds of the same spec differ", kind)
		}
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []Spec{
		{Kind: "nosuch", N: 5},
		{Kind: "fork", N: 0},
		{Kind: "fork", N: -2},
		{Kind: "diamond", N: 3, Depth: -1},
		{Kind: "chain", N: 3, Volume: -5},
		{Kind: "random", MinTasks: 9, MaxTasks: 3},
		{Kind: "outforest", N: 10, Roots: -1},
		{Kind: "outforest", N: 10, Degree: -2},
	}
	for _, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("spec %+v accepted", sp)
		}
		if _, err := sp.Build(); err == nil {
			t.Errorf("spec %+v built", sp)
		}
	}
}

func buildBytes(t *testing.T, sp Spec) []byte {
	t.Helper()
	g, err := sp.Build()
	if err != nil {
		t.Fatalf("%+v: %v", sp, err)
	}
	var b bytes.Buffer
	if err := g.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// Canonical resolves omitted defaults and zeroes fields the kind does
// not consume, so specs that build the same graph share one canonical
// form (the caftd cache key).
func TestSpecCanonical(t *testing.T) {
	equal := [][2]Spec{
		// Omitted depth means 4.
		{{Kind: "diamond", N: 3, Volume: 100}, {Kind: "diamond", N: 3, Depth: 4, Volume: 100}},
		// Omitted roots means 2.
		{{Kind: "outforest", N: 10, Seed: 5}, {Kind: "outforest", N: 10, Seed: 5, Roots: 2}},
		// random ignores n, depth and volume; omitted bounds mean the
		// paper's defaults.
		{{Kind: "random", Seed: 3}, {Kind: "random", Seed: 3, N: 99, Depth: 7, Volume: 5,
			MinTasks: DefaultParams.MinTasks, MaxTasks: DefaultParams.MaxTasks}},
		// Deterministic kinds ignore the seed and the random-only knobs.
		{{Kind: "montage", N: 4}, {Kind: "montage", N: 4, Seed: 9, Roots: 3, MinTasks: 5}},
		// Montage clamps nproj below 2 up to 2; the canonical form
		// mirrors the clamp.
		{{Kind: "montage", N: 1, Volume: 50}, {Kind: "montage", N: 2, Volume: 50}},
	}
	for _, pair := range equal {
		if pair[0].Canonical() != pair[1].Canonical() {
			t.Errorf("canonical forms differ: %+v vs %+v", pair[0].Canonical(), pair[1].Canonical())
		}
		if !bytes.Equal(buildBytes(t, pair[0]), buildBytes(t, pair[1])) {
			t.Errorf("equal canonical specs build different graphs: %+v vs %+v", pair[0], pair[1])
		}
	}
	// The random family needs no size parameter at all.
	if _, err := (Spec{Kind: "random", Seed: 1}).Build(); err != nil {
		t.Errorf("minimal random spec rejected: %v", err)
	}
}

// Tasks must predict the built task count exactly for deterministic
// kinds (an upper bound for random) and saturate instead of overflow.
func TestSpecTasks(t *testing.T) {
	for _, sp := range []Spec{
		{Kind: "fork", N: 6}, {Kind: "join", N: 6}, {Kind: "chain", N: 6},
		{Kind: "outforest", N: 9, Seed: 2}, {Kind: "diamond", N: 3, Depth: 5},
		{Kind: "stencil", N: 4, Depth: 3}, {Kind: "montage", N: 5}, {Kind: "fft", N: 3},
	} {
		g, err := sp.Build()
		if err != nil {
			t.Fatalf("%+v: %v", sp, err)
		}
		if got := sp.Tasks(); got != g.NumTasks() {
			t.Errorf("%s: Tasks() = %d, built %d", sp.Kind, got, g.NumTasks())
		}
	}
	if got := (Spec{Kind: "random"}).Tasks(); got != DefaultParams.MaxTasks {
		t.Errorf("random Tasks() = %d, want the MaxTasks bound %d", got, DefaultParams.MaxTasks)
	}
	for _, sp := range []Spec{
		{Kind: "fft", N: 62},
		{Kind: "stencil", N: 1 << 40, Depth: 1 << 40},
	} {
		if got := sp.Tasks(); got != int(^uint(0)>>1) {
			t.Errorf("%s overflow case: Tasks() = %d, want MaxInt", sp.Kind, got)
		}
	}
}

// Volume zero is a legal literal (communication-free edges), not an
// omitted-default marker: dagen's documented `-volume 0` behavior.
func TestSpecZeroVolume(t *testing.T) {
	g, err := Spec{Kind: "fork", N: 3}.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Volume != 0 {
			t.Fatalf("edge %d->%d has volume %v, want 0", e.From, e.To, e.Volume)
		}
	}
}
