package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"caft/internal/dag"
)

func TestRandomLayeredWithinParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := RandomLayered(rng, DefaultParams)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		v := g.NumTasks()
		if v < DefaultParams.MinTasks || v > DefaultParams.MaxTasks {
			t.Fatalf("v = %d outside [%d,%d]", v, DefaultParams.MinTasks, DefaultParams.MaxTasks)
		}
		for id := 0; id < v; id++ {
			for _, e := range g.Succ(dag.TaskID(id)) {
				if e.Volume < DefaultParams.MinVolume || e.Volume > DefaultParams.MaxVolume {
					t.Fatalf("volume %v outside [%v,%v]", e.Volume, DefaultParams.MinVolume, DefaultParams.MaxVolume)
				}
			}
		}
		// Every non-entry task must have a predecessor; task 0 is entry.
		for id := 1; id < v; id++ {
			if g.InDegree(dag.TaskID(id)) == 0 && g.OutDegree(dag.TaskID(id)) == 0 {
				t.Fatalf("task %d isolated", id)
			}
		}
	}
}

func TestRandomLayeredEdgeDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomLayered(rng, DefaultParams)
	v, e := g.NumTasks(), g.NumEdges()
	// Degree in [1,3] gives roughly e in [v, 3v]; allow the guarantee
	// edges a little slack.
	if e < v-1 || e > 3*v+10 {
		t.Fatalf("e = %d implausible for v = %d", e, v)
	}
}

func TestRandomLayeredDeterministicPerSeed(t *testing.T) {
	g1 := RandomLayered(rand.New(rand.NewSource(42)), DefaultParams)
	g2 := RandomLayered(rand.New(rand.NewSource(42)), DefaultParams)
	if g1.NumTasks() != g2.NumTasks() || g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	e1, e2 := g1.Edges(), g2.Edges()
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func TestFork(t *testing.T) {
	g := Fork(5, 10)
	if g.NumTasks() != 6 || g.NumEdges() != 5 {
		t.Fatalf("fork(5): %d tasks %d edges", g.NumTasks(), g.NumEdges())
	}
	if len(g.Entries()) != 1 || len(g.Exits()) != 5 {
		t.Fatalf("fork shape wrong: entries %v exits %v", g.Entries(), g.Exits())
	}
	for id := 1; id <= 5; id++ {
		if g.InDegree(dag.TaskID(id)) != 1 {
			t.Fatalf("leaf %d in-degree %d", id, g.InDegree(dag.TaskID(id)))
		}
	}
}

func TestJoin(t *testing.T) {
	g := Join(4, 10)
	if len(g.Entries()) != 4 || len(g.Exits()) != 1 {
		t.Fatalf("join shape wrong: entries %v exits %v", g.Entries(), g.Exits())
	}
	if g.InDegree(4) != 4 {
		t.Fatalf("sink in-degree %d", g.InDegree(4))
	}
}

func TestChain(t *testing.T) {
	g := Chain(7, 3)
	if g.NumTasks() != 7 || g.NumEdges() != 6 {
		t.Fatalf("chain(7): %d tasks %d edges", g.NumTasks(), g.NumEdges())
	}
	if g.Width() != 1 {
		t.Fatalf("chain width %d", g.Width())
	}
}

func TestRandomOutForestInDegreeAtMostOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		roots := 1 + rng.Intn(3)
		g := RandomOutForest(rng, n, roots, 0, 50, 150)
		if g.Validate() != nil {
			return false
		}
		for id := 0; id < n; id++ {
			if g.InDegree(dag.TaskID(id)) > 1 {
				return false
			}
		}
		// e = n - roots exactly (each non-root gets one parent).
		eff := roots
		if eff > n {
			eff = n
		}
		return g.NumEdges() == n-eff
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiamond(t *testing.T) {
	g := Diamond(3, 4, 5)
	if g.NumTasks() != 2+12 {
		t.Fatalf("diamond tasks = %d", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Entries()) != 1 || len(g.Exits()) != 1 {
		t.Fatal("diamond must have single entry and exit")
	}
	d := g.Depths()
	if d[g.Exits()[0]] != 5 { // src + 4 chain + sink => depth 5
		t.Fatalf("sink depth = %d, want 5", d[g.Exits()[0]])
	}
}

func TestStencil(t *testing.T) {
	g := Stencil(3, 4, 2)
	if g.NumTasks() != 12 {
		t.Fatalf("stencil tasks = %d", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior task (1,1) = id 5 depends on (0,1) and (0,0).
	if g.InDegree(5) != 2 {
		t.Fatalf("in-degree of interior task = %d, want 2", g.InDegree(5))
	}
}

func TestMontage(t *testing.T) {
	g := Montage(4, 100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 proj + 3 diff + 1 model + 4 bg + add + shrink = 14.
	if g.NumTasks() != 14 {
		t.Fatalf("montage tasks = %d, want 14", g.NumTasks())
	}
	if len(g.Exits()) != 1 {
		t.Fatalf("montage exits = %v", g.Exits())
	}
	if g.Name(0) != "mProject0" {
		t.Fatalf("task 0 name = %q", g.Name(0))
	}
}

func TestFFT(t *testing.T) {
	g := FFT(3, 10) // 8-point FFT: 4 ranks x 8 tasks.
	if g.NumTasks() != 32 {
		t.Fatalf("fft tasks = %d, want 32", g.NumTasks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Each non-rank-0 task has exactly two predecessors.
	for id := 8; id < 32; id++ {
		if g.InDegree(dag.TaskID(id)) != 2 {
			t.Fatalf("fft task %d in-degree %d, want 2", id, g.InDegree(dag.TaskID(id)))
		}
	}
	if w := g.Width(); w != 8 {
		t.Fatalf("fft width = %d, want 8", w)
	}
}
