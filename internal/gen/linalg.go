package gen

import (
	"fmt"
	"math/rand"

	"caft/internal/dag"
)

// Cholesky returns the task graph of a tiled Cholesky factorization of
// an n x n tile matrix — the classic dense linear-algebra DAG used
// throughout the heterogeneous-scheduling literature. Tasks are POTRF
// (diagonal factorization), TRSM (panel solve), SYRK (diagonal update)
// and GEMM (trailing update); tileVolume is the data volume of one tile
// transfer.
func Cholesky(n int, tileVolume float64) *dag.DAG {
	g := &dag.DAG{}
	// writer[i][j] = task that last wrote tile (i,j) (i >= j).
	writer := make([][]dag.TaskID, n)
	for i := range writer {
		writer[i] = make([]dag.TaskID, n)
		for j := range writer[i] {
			writer[i][j] = -1
		}
	}
	dep := func(from, to dag.TaskID) {
		if from >= 0 {
			g.AddEdge(from, to, tileVolume)
		}
	}
	for k := 0; k < n; k++ {
		potrf := g.AddTask(fmt.Sprintf("POTRF(%d)", k))
		dep(writer[k][k], potrf)
		writer[k][k] = potrf
		for i := k + 1; i < n; i++ {
			trsm := g.AddTask(fmt.Sprintf("TRSM(%d,%d)", i, k))
			dep(potrf, trsm)
			dep(writer[i][k], trsm)
			writer[i][k] = trsm
		}
		for i := k + 1; i < n; i++ {
			syrk := g.AddTask(fmt.Sprintf("SYRK(%d,%d)", i, k))
			dep(writer[i][k], syrk)
			dep(writer[i][i], syrk)
			writer[i][i] = syrk
			for j := k + 1; j < i; j++ {
				gemm := g.AddTask(fmt.Sprintf("GEMM(%d,%d,%d)", i, j, k))
				dep(writer[i][k], gemm)
				dep(writer[j][k], gemm)
				dep(writer[i][j], gemm)
				writer[i][j] = gemm
			}
		}
	}
	return g
}

// GaussianElimination returns the task graph of an n x n blocked
// Gaussian elimination: at step k a pivot task feeds the update of
// every remaining column, which feeds the next pivot — the triangular
// dependence structure used by Topcuoglu et al. to evaluate HEFT.
func GaussianElimination(n int, volume float64) *dag.DAG {
	g := &dag.DAG{}
	var cols []dag.TaskID // last writer of each remaining column
	cols = make([]dag.TaskID, n)
	for j := range cols {
		cols[j] = -1
	}
	for k := 0; k < n-1; k++ {
		pivot := g.AddTask(fmt.Sprintf("pivot(%d)", k))
		if cols[k] >= 0 {
			g.AddEdge(cols[k], pivot, volume)
		}
		for j := k + 1; j < n; j++ {
			upd := g.AddTask(fmt.Sprintf("update(%d,%d)", k, j))
			g.AddEdge(pivot, upd, volume)
			if cols[j] >= 0 {
				g.AddEdge(cols[j], upd, volume)
			}
			cols[j] = upd
		}
	}
	return g
}

// RandomFanInOut generates a random DAG in the style of the STG
// benchmark suite (Tobita & Kasahara): tasks in random layers, each
// non-entry task drawing a random number of predecessors from the
// immediately preceding layers, with volumes in [minVol, maxVol].
func RandomFanInOut(rng *rand.Rand, tasks, layers, maxFanIn int, minVol, maxVol float64) *dag.DAG {
	if layers < 2 {
		layers = 2
	}
	if layers > tasks {
		layers = tasks
	}
	if maxFanIn < 1 {
		maxFanIn = 1
	}
	g := dag.New(tasks)
	// Assign each task a layer; every layer gets at least one task.
	layerOf := make([]int, tasks)
	for i := 0; i < layers; i++ {
		layerOf[i] = i
	}
	for i := layers; i < tasks; i++ {
		layerOf[i] = rng.Intn(layers)
	}
	// Tasks sorted by layer keep edges forward.
	byLayer := make([][]int, layers)
	order := make([]int, 0, tasks)
	for l := 0; l < layers; l++ {
		for i := 0; i < tasks; i++ {
			if layerOf[i] == l {
				byLayer[l] = append(byLayer[l], i)
				order = append(order, i)
			}
		}
	}
	vol := func() float64 { return minVol + rng.Float64()*(maxVol-minVol) }
	for l := 1; l < layers; l++ {
		prev := byLayer[l-1]
		for _, t := range byLayer[l] {
			fanIn := 1 + rng.Intn(maxFanIn)
			if fanIn > len(prev) {
				fanIn = len(prev)
			}
			for _, pi := range rng.Perm(len(prev))[:fanIn] {
				g.AddEdge(dag.TaskID(prev[pi]), dag.TaskID(t), vol())
			}
		}
	}
	_ = order
	return g
}
