package gen

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"caft/internal/dag"
)

func TestCholeskyStructure(t *testing.T) {
	g := Cholesky(3, 50)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// n=3: 3 POTRF + 3 TRSM (2+1) + 3 SYRK (2+1) + 1 GEMM = 10 tasks.
	if g.NumTasks() != 10 {
		t.Fatalf("tasks = %d, want 10", g.NumTasks())
	}
	// The first POTRF is the only entry.
	entries := g.Entries()
	if len(entries) != 1 || !strings.HasPrefix(g.Name(entries[0]), "POTRF(0)") {
		t.Fatalf("entries = %v", entries)
	}
	// The last POTRF is an exit.
	foundLastPotrf := false
	for _, x := range g.Exits() {
		if g.Name(x) == "POTRF(2)" {
			foundLastPotrf = true
		}
	}
	if !foundLastPotrf {
		t.Fatal("POTRF(2) is not an exit")
	}
}

func TestCholeskyTaskCountFormula(t *testing.T) {
	// Tasks: n POTRF + n(n-1)/2 TRSM + n(n-1)/2 SYRK + sum GEMMs
	// (n(n-1)(n-2)/6).
	for n := 2; n <= 6; n++ {
		g := Cholesky(n, 10)
		want := n + n*(n-1)/2 + n*(n-1)/2 + n*(n-1)*(n-2)/6
		if g.NumTasks() != want {
			t.Fatalf("n=%d: tasks = %d, want %d", n, g.NumTasks(), want)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGaussianElimination(t *testing.T) {
	g := GaussianElimination(4, 60)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Steps k=0..2: 1 pivot + (n-1-k) updates each: (1+3)+(1+2)+(1+1)=9.
	if g.NumTasks() != 9 {
		t.Fatalf("tasks = %d, want 9", g.NumTasks())
	}
	// The chain of pivots forces depth >= 2(n-1)-1.
	depths := g.Depths()
	max := 0
	for _, d := range depths {
		if d > max {
			max = d
		}
	}
	if max < 2*(4-1)-1 {
		t.Fatalf("depth = %d, want >= 5", max)
	}
}

func TestRandomFanInOutProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tasks := 10 + rng.Intn(60)
		layers := 2 + rng.Intn(8)
		maxFanIn := 1 + rng.Intn(4)
		g := RandomFanInOut(rng, tasks, layers, maxFanIn, 10, 20)
		if g.Validate() != nil || g.NumTasks() != tasks {
			return false
		}
		for id := 0; id < tasks; id++ {
			if g.InDegree(dag.TaskID(id)) > maxFanIn {
				return false
			}
			for _, e := range g.Succ(dag.TaskID(id)) {
				if e.Volume < 10 || e.Volume > 20 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFanInOutDegenerateParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomFanInOut(rng, 5, 100, 0, 1, 2) // layers > tasks, fanIn 0
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 5 {
		t.Fatalf("tasks = %d", g.NumTasks())
	}
}
