// Package topology implements the sparse-interconnect extension the
// paper sketches in its conclusion: "an easy extension of CAFT would be
// to adapt it to sparse interconnection graphs (while we had a clique in
// this paper). On such platforms, each processor is provided with a
// routing table which indicates the route to be used to communicate with
// another processor. To achieve contention awareness, at most one
// message can circulate on a given link at a given time-step."
//
// A Graph is a set of processors connected by bidirectional links (two
// directed links per edge). Routing tables are built with breadth-first
// shortest paths (fewest hops, deterministic lowest-neighbor tie
// breaking). A message from Pi to Pj occupies every directed link of the
// route for the whole transfer — circuit-switched occupation, the
// natural generalization of the paper's one-link-at-a-time rule — and
// its duration is the volume times the sum of the per-link unit delays
// along the route.
//
// Graph implements sched.Network, so every scheduler in this repository
// runs unchanged on rings, stars, meshes, tori, hypercubes and random
// connected networks.
//
//caft:deterministic
package topology

import (
	"fmt"
	"math/rand"
)

// Edge is an undirected connection between two processors with a unit
// message delay per direction.
type Edge struct {
	A, B  int
	Delay float64
}

// Graph is a sparse interconnect with precomputed routing tables. It
// implements sched.Network.
type Graph struct {
	m      int
	from   []int // directed link endpoints
	to     []int
	delay  []float64 // per directed link
	routes [][][]int // routes[src][dst] = directed link IDs in order
	dur    [][]float64
}

// New builds a graph over m processors from undirected edges and
// computes all-pairs shortest-hop routes. It returns an error if the
// graph is disconnected or an edge is invalid.
func New(m int, edges []Edge) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("topology: need at least one processor")
	}
	g := &Graph{m: m}
	adj := make([][]int, m) // adjacent directed link IDs per source
	addDirected := func(a, b int, d float64) {
		id := len(g.from)
		g.from = append(g.from, a)
		g.to = append(g.to, b)
		g.delay = append(g.delay, d)
		adj[a] = append(adj[a], id)
	}
	for _, e := range edges {
		if e.A < 0 || e.A >= m || e.B < 0 || e.B >= m || e.A == e.B {
			return nil, fmt.Errorf("topology: invalid edge %d-%d", e.A, e.B)
		}
		if e.Delay <= 0 {
			return nil, fmt.Errorf("topology: non-positive delay on edge %d-%d", e.A, e.B)
		}
		addDirected(e.A, e.B, e.Delay)
		addDirected(e.B, e.A, e.Delay)
	}
	// BFS from every source. Tie break: neighbors are visited in link
	// insertion order, which is deterministic.
	g.routes = make([][][]int, m)
	g.dur = make([][]float64, m)
	for src := 0; src < m; src++ {
		parentLink := make([]int, m)
		for i := range parentLink {
			parentLink[i] = -1
		}
		visited := make([]bool, m)
		visited[src] = true
		queue := []int{src}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range adj[u] {
				v := g.to[id]
				if !visited[v] {
					visited[v] = true
					parentLink[v] = id
					queue = append(queue, v)
				}
			}
		}
		g.routes[src] = make([][]int, m)
		g.dur[src] = make([]float64, m)
		for dst := 0; dst < m; dst++ {
			if dst == src {
				continue
			}
			if !visited[dst] {
				return nil, fmt.Errorf("topology: processors %d and %d are disconnected", src, dst)
			}
			var rev []int
			total := 0.0
			for v := dst; v != src; {
				id := parentLink[v]
				rev = append(rev, id)
				total += g.delay[id]
				v = g.from[id]
			}
			route := make([]int, len(rev))
			for i := range rev {
				route[i] = rev[len(rev)-1-i]
			}
			g.routes[src][dst] = route
			g.dur[src][dst] = total
		}
	}
	return g, nil
}

// NumProcs returns the number of processors.
func (g *Graph) NumProcs() int { return g.m }

// NumLinks returns the number of directed links.
func (g *Graph) NumLinks() int { return len(g.from) }

// Route returns the directed link IDs a message src->dst crosses.
func (g *Graph) Route(src, dst int) []int {
	if src == dst {
		return nil
	}
	return g.routes[src][dst]
}

// Dur returns the transfer duration of volume units from src to dst:
// volume times the summed unit delays of the route.
func (g *Graph) Dur(src, dst int, volume float64) float64 {
	if src == dst {
		return 0
	}
	return volume * g.dur[src][dst]
}

// UnitDelay returns the effective unit delay of the route src->dst.
func (g *Graph) UnitDelay(src, dst int) float64 {
	if src == dst {
		return 0
	}
	return g.dur[src][dst]
}

// MeanUnitDelay returns the average effective unit delay over distinct
// processor pairs.
func (g *Graph) MeanUnitDelay() float64 {
	if g.m < 2 {
		return 0
	}
	s := 0.0
	for src := 0; src < g.m; src++ {
		for dst := 0; dst < g.m; dst++ {
			if src != dst {
				s += g.dur[src][dst]
			}
		}
	}
	return s / float64(g.m*(g.m-1))
}

// Racks partitions the processors into k groups of interconnect
// neighbors: the BFS visit order from processor 0 (deterministic, by
// link insertion order) is cut into k contiguous chunks, so processors
// that are close in the interconnect land in the same group. On a mesh
// or torus the chunks are spatial blocks; on a ring they are arcs. The
// partition feeds the correlated failure model (failure.Rack), which
// crashes a whole group at its common-mode failure instant. k is
// clamped to [1, m]; the first m mod k racks get the extra processor.
func (g *Graph) Racks(k int) [][]int {
	if k < 1 {
		k = 1
	}
	if k > g.m {
		k = g.m
	}
	// BFS from 0 over directed links in insertion order.
	order := make([]int, 0, g.m)
	visited := make([]bool, g.m)
	visited[0] = true
	queue := []int{0}
	adj := make([][]int, g.m)
	for id, a := range g.from {
		adj[a] = append(adj[a], id)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, id := range adj[u] {
			if v := g.to[id]; !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	racks := make([][]int, k)
	base, extra := g.m/k, g.m%k
	at := 0
	for i := range racks {
		n := base
		if i < extra {
			n++
		}
		racks[i] = append([]int(nil), order[at:at+n]...)
		at += n
	}
	return racks
}

// Diameter returns the maximum route length in hops.
func (g *Graph) Diameter() int {
	d := 0
	for src := range g.routes {
		for dst := range g.routes[src] {
			if n := len(g.routes[src][dst]); n > d {
				d = n
			}
		}
	}
	return d
}

// Ring connects m (>= 2) processors in a cycle.
func Ring(m int, delay float64) (*Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("topology: ring needs at least 2 processors, got %d", m)
	}
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{A: i, B: (i + 1) % m, Delay: delay})
	}
	if m == 2 {
		edges = edges[:1]
	}
	return New(m, edges)
}

// Star connects every processor to processor 0 (the hub); m must be at
// least 2.
func Star(m int, delay float64) (*Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("topology: star needs at least 2 processors, got %d", m)
	}
	edges := make([]Edge, 0, m-1)
	for i := 1; i < m; i++ {
		edges = append(edges, Edge{A: 0, B: i, Delay: delay})
	}
	return New(m, edges)
}

// Mesh2D builds a rows x cols grid; both dimensions must be positive
// and the grid must hold at least 2 processors.
func Mesh2D(rows, cols int, delay float64) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: invalid %dx%d mesh", rows, cols)
	}
	id := func(r, c int) int { return r*cols + c }
	var edges []Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, Edge{A: id(r, c), B: id(r, c+1), Delay: delay})
			}
			if r+1 < rows {
				edges = append(edges, Edge{A: id(r, c), B: id(r+1, c), Delay: delay})
			}
		}
	}
	return New(rows*cols, edges)
}

// Torus2D builds a rows x cols grid with wraparound links; both
// dimensions must be positive and the grid must hold at least 2
// processors.
func Torus2D(rows, cols int, delay float64) (*Graph, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: invalid %dx%d torus", rows, cols)
	}
	id := func(r, c int) int { return r*cols + c }
	seen := map[[2]int]bool{}
	var edges []Edge
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		k := [2]int{min(a, b), max(a, b)}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, Edge{A: a, B: b, Delay: delay})
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			addEdge(id(r, c), id(r, (c+1)%cols))
			addEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return New(rows*cols, edges)
}

// Hypercube builds a k-dimensional hypercube over 2^k processors;
// k must be in [1, 20] (2 to ~1M processors).
func Hypercube(k int, delay float64) (*Graph, error) {
	if k < 1 || k > 20 {
		return nil, fmt.Errorf("topology: hypercube dimension %d outside [1, 20]", k)
	}
	m := 1 << k
	var edges []Edge
	for i := 0; i < m; i++ {
		for b := 0; b < k; b++ {
			j := i ^ (1 << b)
			if i < j {
				edges = append(edges, Edge{A: i, B: j, Delay: delay})
			}
		}
	}
	return New(m, edges)
}

// RandomConnected builds a random connected graph over m (>= 2)
// processors: a random spanning tree plus up to extra random edges,
// with delays drawn from [lo, hi] (0 < lo <= hi).
func RandomConnected(rng *rand.Rand, m, extra int, lo, hi float64) (*Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("topology: random graph needs at least 2 processors, got %d", m)
	}
	if extra < 0 {
		return nil, fmt.Errorf("topology: negative extra edge count %d", extra)
	}
	if lo <= 0 || hi < lo {
		return nil, fmt.Errorf("topology: invalid delay range [%v, %v]", lo, hi)
	}
	var edges []Edge
	seen := map[[2]int]bool{}
	addEdge := func(a, b int, d float64) bool {
		if a == b {
			return false
		}
		k := [2]int{min(a, b), max(a, b)}
		if seen[k] {
			return false
		}
		seen[k] = true
		edges = append(edges, Edge{A: a, B: b, Delay: d})
		return true
	}
	perm := rng.Perm(m)
	for i := 1; i < m; i++ {
		addEdge(perm[i], perm[rng.Intn(i)], lo+rng.Float64()*(hi-lo))
	}
	// At most m(m-1)/2 - (m-1) extra edges exist beyond the spanning
	// tree; cap both the target and the number of attempts.
	if room := m*(m-1)/2 - (m - 1); extra > room {
		extra = room
	}
	for added, attempts := 0, 0; added < extra && attempts < 100*m*m; attempts++ {
		if addEdge(rng.Intn(m), rng.Intn(m), lo+rng.Float64()*(hi-lo)) {
			added++
		}
	}
	return New(m, edges)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
