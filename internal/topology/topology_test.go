package topology

import (
	"math/rand"
	"testing"
	"testing/quick"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sim"
	"caft/internal/timeline"
)

// must unwraps a convenience-constructor result for the statically
// valid shapes used across these tests.
func must(g *Graph, err error) *Graph {
	if err != nil {
		panic(err)
	}
	return g
}

// The convenience constructors must reject invalid sizes with an error
// — like New — instead of panicking (they used to panic on the error
// path of New, and nonsense sizes like Ring(1) only surfaced there).
func TestConstructorsRejectInvalidSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		shape string
		build func() (*Graph, error)
	}{
		{"ring", func() (*Graph, error) { return Ring(1, 1) }},
		{"star", func() (*Graph, error) { return Star(1, 1) }},
		{"mesh", func() (*Graph, error) { return Mesh2D(0, 4, 1) }},
		{"torus", func() (*Graph, error) { return Torus2D(2, 0, 1) }},
		{"hypercube", func() (*Graph, error) { return Hypercube(0, 1) }},
		{"random", func() (*Graph, error) { return RandomConnected(rng, 1, 2, 0.5, 1.0) }},
		{"random-delay", func() (*Graph, error) { return RandomConnected(rng, 4, 2, 0, 1.0) }},
	}
	for _, c := range cases {
		g, err := c.build()
		if err == nil {
			t.Errorf("%s: invalid size accepted (got %d-proc graph)", c.shape, g.NumProcs())
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, nil); err == nil {
		t.Error("accepted zero processors")
	}
	if _, err := New(3, []Edge{{A: 0, B: 3, Delay: 1}}); err == nil {
		t.Error("accepted out-of-range edge")
	}
	if _, err := New(3, []Edge{{A: 1, B: 1, Delay: 1}}); err == nil {
		t.Error("accepted self edge")
	}
	if _, err := New(3, []Edge{{A: 0, B: 1, Delay: 0}}); err == nil {
		t.Error("accepted zero delay")
	}
	if _, err := New(3, []Edge{{A: 0, B: 1, Delay: 1}}); err == nil {
		t.Error("accepted disconnected graph")
	}
}

func TestRingRoutes(t *testing.T) {
	g := must(Ring(6, 1))
	if g.NumLinks() != 12 {
		t.Fatalf("ring(6) links = %d, want 12", g.NumLinks())
	}
	// 0 -> 3 is 3 hops either way.
	if len(g.Route(0, 3)) != 3 {
		t.Errorf("route 0->3 = %d hops, want 3", len(g.Route(0, 3)))
	}
	if g.Dur(0, 3, 10) != 30 {
		t.Errorf("Dur(0,3,10) = %v, want 30", g.Dur(0, 3, 10))
	}
	if g.Route(2, 2) != nil {
		t.Error("self route not nil")
	}
	if g.Diameter() != 3 {
		t.Errorf("ring(6) diameter = %d, want 3", g.Diameter())
	}
}

func TestRingTwoProcs(t *testing.T) {
	g := must(Ring(2, 1))
	if g.NumLinks() != 2 {
		t.Fatalf("ring(2) links = %d, want 2 (no double edge)", g.NumLinks())
	}
}

func TestStar(t *testing.T) {
	g := must(Star(5, 0.5))
	// Leaf to leaf: 2 hops through the hub.
	if len(g.Route(1, 4)) != 2 {
		t.Errorf("route 1->4 = %d hops, want 2", len(g.Route(1, 4)))
	}
	if g.Dur(1, 4, 10) != 10 {
		t.Errorf("Dur = %v, want 10", g.Dur(1, 4, 10))
	}
	if len(g.Route(0, 3)) != 1 {
		t.Errorf("hub route = %d hops, want 1", len(g.Route(0, 3)))
	}
	if g.Diameter() != 2 {
		t.Errorf("star diameter = %d, want 2", g.Diameter())
	}
}

func TestMeshAndTorus(t *testing.T) {
	mesh := must(Mesh2D(3, 3, 1))
	if mesh.NumProcs() != 9 {
		t.Fatalf("mesh procs = %d", mesh.NumProcs())
	}
	// Corner to corner: 4 hops.
	if len(mesh.Route(0, 8)) != 4 {
		t.Errorf("mesh corner route = %d hops, want 4", len(mesh.Route(0, 8)))
	}
	torus := must(Torus2D(3, 3, 1))
	// Wraparound shortens: 0 to 8 is 2 hops ((0,0)->(2,0)->(2,2)).
	if len(torus.Route(0, 8)) != 2 {
		t.Errorf("torus corner route = %d hops, want 2", len(torus.Route(0, 8)))
	}
	if torus.Diameter() >= mesh.Diameter() {
		t.Errorf("torus diameter %d should beat mesh %d", torus.Diameter(), mesh.Diameter())
	}
}

func TestHypercube(t *testing.T) {
	g := must(Hypercube(3, 1))
	if g.NumProcs() != 8 {
		t.Fatalf("procs = %d", g.NumProcs())
	}
	if g.NumLinks() != 8*3 { // 12 undirected edges = 24 directed... 8*3=24
		t.Fatalf("links = %d, want 24", g.NumLinks())
	}
	// 000 -> 111 is 3 hops.
	if len(g.Route(0, 7)) != 3 {
		t.Errorf("route 0->7 = %d hops, want 3", len(g.Route(0, 7)))
	}
	if g.Diameter() != 3 {
		t.Errorf("diameter = %d, want 3", g.Diameter())
	}
}

func TestRandomConnectedProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(12)
		g := must(RandomConnected(rng, m, rng.Intn(6), 0.5, 1.0))
		// Connectivity: every pair has a route; durations positive and
		// symmetric-ish in hop count.
		for a := 0; a < m; a++ {
			for b := 0; b < m; b++ {
				if a == b {
					continue
				}
				r := g.Route(a, b)
				if len(r) == 0 {
					return false
				}
				if g.Dur(a, b, 1) <= 0 {
					return false
				}
				// Routes are consistent: consecutive links chain.
				prev := a
				for _, id := range r {
					if g.from[id] != prev {
						return false
					}
					prev = g.to[id]
				}
				if prev != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanUnitDelay(t *testing.T) {
	g := must(Ring(4, 1))
	// Ring(4): distances 1,2,1 from each node; mean = 4/3.
	want := 4.0 / 3.0
	if got := g.MeanUnitDelay(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("MeanUnitDelay = %v, want %v", got, want)
	}
	single, err := New(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if single.MeanUnitDelay() != 0 {
		t.Error("single-proc mean delay should be 0")
	}
}

// Scheduling on a sparse network: CAFT schedules validate under the
// route-aware one-port model and remain crash-resilient.
func TestCAFTOnSparseTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	topos := map[string]*Graph{
		"ring":      must(Ring(8, 0.75)),
		"star":      must(Star(8, 0.75)),
		"mesh":      must(Mesh2D(2, 4, 0.75)),
		"hypercube": must(Hypercube(3, 0.75)),
	}
	for name, net := range topos {
		m := net.NumProcs()
		graph := gen.RandomLayered(rng, gen.RandomParams{MinTasks: 25, MaxTasks: 30, MinDegree: 1, MaxDegree: 3, MinVolume: 5, MaxVolume: 15})
		plat := platform.New(m, 0.75) // delays unused when Net is set
		exec := platform.GenExecForGranularity(rng, graph, plat, 1.0, platform.DefaultHeterogeneity)
		p := &sched.Problem{G: graph, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append, Net: net}
		s, err := core.Schedule(p, 1, rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		for proc := 0; proc < m; proc++ {
			if _, err := sim.CrashLatency(s, map[int]bool{proc: true}); err != nil {
				t.Fatalf("%s: crash P%d: %v", name, proc, err)
			}
		}
	}
}

// Shared links must serialize: on a star, two simultaneous leaf-to-leaf
// transfers that share the hub's links cannot overlap.
func TestStarLinkContention(t *testing.T) {
	net := must(Star(5, 1))
	g := gen.Join(2, 4) // t0, t1 -> t2; W = 4 per hop => 8 leaf-to-leaf
	plat := platform.New(5, 1)
	exec := platform.NewExecMatrix(3, 5)
	for ti := range exec {
		for k := range exec[ti] {
			exec[ti][k] = 1
		}
	}
	p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append, Net: net}
	st := sched.NewState(p)
	st.PlaceReplica(0, 0, 1, nil) // leaf P1, [0,1)
	st.PlaceReplica(1, 0, 2, nil) // leaf P2, [0,1)
	rep, err := st.PlaceReplica(2, 0, 3, st.FullSources(2))
	if err != nil {
		t.Fatal(err)
	}
	// Each transfer takes 8 (2 hops x delay 1 x volume 4). Both route
	// through the hub's link 0->3 segment, and both end at P3's receive
	// port, so they serialize: arrivals 9 and 17; t2 starts at 17.
	if rep.Start != 17 {
		t.Fatalf("t2 start = %v, want 17 (link serialization through hub)", rep.Start)
	}
}

// Racks must partition the processors into proximity groups: every
// processor in exactly one rack, rack sizes balanced, and on a mesh the
// two racks split into spatially contiguous halves.
func TestRacksPartition(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
		k    int
	}{
		{"ring", must(Ring(8, 1)), 3},
		{"mesh", must(Mesh2D(2, 3, 1)), 2},
		{"hypercube", must(Hypercube(3, 1)), 4},
		{"star-clamped", must(Star(4, 1)), 9}, // k > m clamps to m
	} {
		racks := tc.g.Racks(tc.k)
		m := tc.g.NumProcs()
		k := tc.k
		if k > m {
			k = m
		}
		if len(racks) != k {
			t.Fatalf("%s: %d racks, want %d", tc.name, len(racks), k)
		}
		seen := make([]bool, m)
		for _, r := range racks {
			if len(r) < m/k || len(r) > m/k+1 {
				t.Fatalf("%s: rack size %d unbalanced for m=%d k=%d", tc.name, len(r), m, k)
			}
			for _, p := range r {
				if seen[p] {
					t.Fatalf("%s: P%d in two racks", tc.name, p)
				}
				seen[p] = true
			}
		}
		for p, ok := range seen {
			if !ok {
				t.Fatalf("%s: P%d in no rack", tc.name, p)
			}
		}
	}
}

func TestRacksDeterministic(t *testing.T) {
	g := must(Torus2D(3, 3, 1))
	a, b := g.Racks(3), g.Racks(3)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("Racks is not deterministic")
			}
		}
	}
}
