// Package bounds computes theoretical lower bounds on the latency of
// any schedule of a problem, used to sanity-check the heuristics and to
// report schedule length ratios (SLR):
//
//   - the critical-path bound: the longest chain of minimum execution
//     times through the DAG, ignoring communication — no schedule can
//     beat the fastest possible execution of the longest chain;
//   - the work bound: the total minimum work divided by the number of
//     processors — even perfect load balancing cannot beat it;
//   - for fault-tolerant schedules with ε+1 replicas, the replicated
//     work bound multiplies the work by the replication degree (active
//     replication executes every copy).
//
//caft:deterministic
package bounds

import (
	"caft/internal/dag"
	"caft/internal/sched"
)

// CriticalPath returns the longest path of per-task minimum execution
// times, ignoring communications.
func CriticalPath(p *sched.Problem) float64 {
	minExec := minPerTask(p)
	return p.G.CriticalPathLen(minExec, func(dag.Edge) float64 { return 0 })
}

// Work returns sum of minimum execution times over all tasks divided by
// the processor count: the load-balance bound for one copy of the
// application.
func Work(p *sched.Problem) float64 {
	minExec := minPerTask(p)
	s := 0.0
	for _, c := range minExec {
		s += c
	}
	return s / float64(p.Plat.M)
}

// ReplicatedWork returns the load-balance bound when every task is
// executed eps+1 times.
func ReplicatedWork(p *sched.Problem, eps int) float64 {
	return Work(p) * float64(eps+1)
}

// Latency returns the largest applicable lower bound on the fault-free
// latency: max(critical path, work bound).
func Latency(p *sched.Problem) float64 {
	cp := CriticalPath(p)
	if w := Work(p); w > cp {
		return w
	}
	return cp
}

// SLR returns the schedule length ratio of a schedule: its latency
// divided by the critical-path bound. SLR >= 1 always; values close to
// 1 indicate near-optimal chains.
func SLR(s *sched.Schedule) float64 {
	cp := CriticalPath(s.P)
	if cp == 0 {
		return 0
	}
	return s.ScheduledLatency() / cp
}

func minPerTask(p *sched.Problem) []float64 {
	out := make([]float64, p.G.NumTasks())
	for t := range out {
		min := p.Exec[t][0]
		for _, c := range p.Exec[t][1:] {
			if c < min {
				min = c
			}
		}
		out[t] = min
	}
	return out
}
