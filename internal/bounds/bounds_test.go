package bounds

import (
	"math/rand"
	"testing"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/heft"
	"caft/internal/timeline"
)

func chainProblem(n, m int, exec float64) *sched.Problem {
	g := gen.Chain(n, 10)
	plat := platform.New(m, 1)
	e := platform.NewExecMatrix(n, m)
	for t := range e {
		for k := range e[t] {
			e[t][k] = exec
		}
	}
	return &sched.Problem{G: g, Plat: plat, Exec: e, Model: sched.OnePort, Policy: timeline.Append}
}

func TestCriticalPathChain(t *testing.T) {
	p := chainProblem(5, 3, 2)
	if cp := CriticalPath(p); cp != 10 {
		t.Errorf("CriticalPath = %v, want 10", cp)
	}
}

func TestCriticalPathUsesMinExec(t *testing.T) {
	p := chainProblem(2, 2, 4)
	p.Exec[1][1] = 1 // fast copy on P1
	if cp := CriticalPath(p); cp != 5 {
		t.Errorf("CriticalPath = %v, want 5 (4 + min(4,1))", cp)
	}
}

func TestWorkBound(t *testing.T) {
	p := chainProblem(6, 3, 2)
	if w := Work(p); w != 4 { // 12 total / 3 procs
		t.Errorf("Work = %v, want 4", w)
	}
	if rw := ReplicatedWork(p, 2); rw != 12 {
		t.Errorf("ReplicatedWork = %v, want 12", rw)
	}
}

func TestLatencyIsMaxOfBounds(t *testing.T) {
	// Wide fork: work bound dominates the chain bound.
	g := gen.Fork(30, 1)
	plat := platform.New(2, 1)
	e := platform.NewExecMatrix(31, 2)
	for ti := range e {
		for k := range e[ti] {
			e[ti][k] = 2
		}
	}
	p := &sched.Problem{G: g, Plat: plat, Exec: e, Model: sched.OnePort, Policy: timeline.Append}
	if cp := CriticalPath(p); cp != 4 {
		t.Fatalf("cp = %v", cp)
	}
	if w := Work(p); w != 31 {
		t.Fatalf("work = %v", w)
	}
	if l := Latency(p); l != 31 {
		t.Errorf("Latency = %v, want 31", l)
	}
}

// Every schedule produced by the heuristics respects the bounds.
func TestSchedulesRespectBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		g := gen.RandomLayered(rng, gen.RandomParams{MinTasks: 30, MaxTasks: 50, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150})
		plat := platform.NewRandom(rng, 6, 0.5, 1.0)
		exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
		p := &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: timeline.Append}
		sh, err := heft.Schedule(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if sh.ScheduledLatency() < Latency(p)-1e-9 {
			t.Fatalf("HEFT latency %v beats the lower bound %v", sh.ScheduledLatency(), Latency(p))
		}
		if r := SLR(sh); r < 1 {
			t.Fatalf("SLR = %v < 1", r)
		}
		for _, eps := range []int{1, 2} {
			sc, err := core.Schedule(p, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			// With replication, even the last replica cannot beat the
			// replicated work bound on the full makespan.
			if sc.ScheduledLatency() < CriticalPath(p)-1e-9 {
				t.Fatalf("eps=%d latency %v beats critical path %v", eps, sc.ScheduledLatency(), CriticalPath(p))
			}
			if sc.MakespanAll() < ReplicatedWork(p, eps)-1e-9 {
				t.Fatalf("eps=%d makespan %v beats replicated work %v", eps, sc.MakespanAll(), ReplicatedWork(p, eps))
			}
		}
	}
}
