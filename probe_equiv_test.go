package caft

import (
	"math/rand"
	"reflect"
	"testing"

	"caft/internal/core"
	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/timeline"
)

// TestSpeculativeProbeEquivalence is the acceptance pin of the
// clone-free probe refactor: every scheduler, under both reservation
// policies, must produce a schedule bit-identical to the one built with
// the pre-refactor deep-clone probe path (sched.CloneProbe). Identical
// tie-breaking streams are guaranteed by seeding each run separately.
func TestSpeculativeProbeEquivalence(t *testing.T) {
	schedulers := []struct {
		name string
		run  func(p *sched.Problem) (*sched.Schedule, error)
	}{
		{"heft", func(p *sched.Problem) (*sched.Schedule, error) {
			return heft.Schedule(p, rand.New(rand.NewSource(7)))
		}},
		{"ftsa", func(p *sched.Problem) (*sched.Schedule, error) {
			return ftsa.Schedule(p, 2, rand.New(rand.NewSource(7)))
		}},
		{"ftbar", func(p *sched.Problem) (*sched.Schedule, error) {
			return ftbar.Schedule(p, 2, rand.New(rand.NewSource(7)))
		}},
		{"caft", func(p *sched.Problem) (*sched.Schedule, error) {
			return core.Schedule(p, 2, rand.New(rand.NewSource(7)))
		}},
		{"caft-batch", func(p *sched.Problem) (*sched.Schedule, error) {
			return core.ScheduleBatch(p, 1, 4, rand.New(rand.NewSource(7)))
		}},
	}
	for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			params := gen.RandomParams{MinTasks: 30, MaxTasks: 40, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
			g := gen.RandomLayered(rng, params)
			plat := platform.NewRandom(rng, 6, 0.5, 1.0)
			exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
			for _, s := range schedulers {
				spec := sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: pol, Probe: sched.SpeculativeProbe}
				clone := spec
				clone.Probe = sched.CloneProbe
				got, err := s.run(&spec)
				if err != nil {
					t.Fatalf("%s/%v/seed%d speculative: %v", s.name, pol, seed, err)
				}
				want, err := s.run(&clone)
				if err != nil {
					t.Fatalf("%s/%v/seed%d clone: %v", s.name, pol, seed, err)
				}
				if !reflect.DeepEqual(got.Reps, want.Reps) {
					t.Errorf("%s/%v/seed%d: replica placements differ between speculative and clone probes", s.name, pol, seed)
				}
				if !reflect.DeepEqual(got.Comms, want.Comms) {
					t.Errorf("%s/%v/seed%d: communications differ between speculative and clone probes", s.name, pol, seed)
				}
				if err := got.Validate(); err != nil {
					t.Errorf("%s/%v/seed%d: speculative schedule invalid: %v", s.name, pol, seed, err)
				}
			}
		}
	}
}
