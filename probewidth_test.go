package caft

import (
	"math/rand"
	"reflect"
	"testing"

	"caft/internal/gen"
	"caft/internal/platform"
	"caft/internal/sched"
	_ "caft/internal/sched/all"
	"caft/internal/timeline"
)

// probeWidthProblem builds one random problem instance for the bounded-
// probing property tests.
func probeWidthProblem(seed int64, pol timeline.Policy) *sched.Problem {
	rng := rand.New(rand.NewSource(seed))
	params := gen.RandomParams{MinTasks: 30, MaxTasks: 40, MinDegree: 1, MaxDegree: 3, MinVolume: 50, MaxVolume: 150}
	g := gen.RandomLayered(rng, params)
	plat := platform.NewRandom(rng, 6, 0.5, 1.0)
	exec := platform.GenExecForGranularity(rng, g, plat, 1.0, platform.DefaultHeterogeneity)
	return &sched.Problem{G: g, Plat: plat, Exec: exec, Model: sched.OnePort, Policy: pol}
}

// epsFor returns the replication degree to drive a scheduler with.
func epsFor(d sched.Descriptor) int {
	if d.Caps.AcceptsEps {
		return 1
	}
	return 0
}

// TestProbeWidthFullIsUnbounded is the bit-identity half of the bounded
// probing contract: for EVERY registered scheduler, under both
// reservation policies, ProbeWidth = m must produce a schedule
// bit-identical to the unbounded default ProbeWidth = 0 — the bounded
// candidate set with k = m is the full processor list in the same probe
// order, so not a single tie break may shift.
func TestProbeWidthFullIsUnbounded(t *testing.T) {
	for _, d := range sched.Registered() {
		for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
			if !d.Caps.Supports(pol) {
				continue
			}
			for seed := int64(1); seed <= 3; seed++ {
				unbounded := probeWidthProblem(seed, pol)
				bounded := probeWidthProblem(seed, pol)
				bounded.ProbeWidth = bounded.Plat.M
				want, err := d.New(unbounded, epsFor(d), rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("%s/%v/seed%d unbounded: %v", d.Name, pol, seed, err)
				}
				got, err := d.New(bounded, epsFor(d), rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("%s/%v/seed%d width=m: %v", d.Name, pol, seed, err)
				}
				if !reflect.DeepEqual(got.Reps, want.Reps) {
					t.Errorf("%s/%v/seed%d: replica placements differ between ProbeWidth=0 and ProbeWidth=m", d.Name, pol, seed)
				}
				if !reflect.DeepEqual(got.Comms, want.Comms) {
					t.Errorf("%s/%v/seed%d: communications differ between ProbeWidth=0 and ProbeWidth=m", d.Name, pol, seed)
				}
			}
		}
	}
}

// TestProbeWidthShrinkValidAndBounded is the monotonicity half: as the
// width shrinks from m down to 1, every schedule must stay valid, and
// the scheduled latency is tracked across widths. Shrinking the
// candidate set usually lengthens the schedule — the probe sees fewer
// options — but NOT always: list scheduling is subject to Graham-style
// timing anomalies, where restricting choices steers a tie or an
// earlier placement into a globally better schedule. The test therefore
// does not assert monotone latency; it asserts validity everywhere and
// reports (with Logf) any anomaly it finds, pinning that anomalies are
// tolerated rather than silently hidden.
func TestProbeWidthShrinkValidAndBounded(t *testing.T) {
	for _, d := range sched.Registered() {
		for _, pol := range []timeline.Policy{timeline.Append, timeline.Insertion} {
			if !d.Caps.Supports(pol) {
				continue
			}
			seed := int64(5)
			prev := -1.0 // latency at the previous (wider) width
			for width := 6; width >= 1; width-- {
				p := probeWidthProblem(seed, pol)
				p.ProbeWidth = width
				s, err := d.New(p, epsFor(d), rand.New(rand.NewSource(seed)))
				if err != nil {
					t.Fatalf("%s/%v width=%d: %v", d.Name, pol, width, err)
				}
				if err := s.Validate(); err != nil {
					t.Errorf("%s/%v width=%d: invalid schedule: %v", d.Name, pol, width, err)
				}
				lat := s.ScheduledLatency()
				if prev >= 0 && lat < prev-sched.Eps {
					// A narrower probe beat a wider one: a Graham anomaly,
					// legal and worth surfacing.
					t.Logf("%s/%v: anomaly — width %d latency %v beats width %d latency %v", d.Name, pol, width, lat, width+1, prev)
				}
				prev = lat
			}
		}
	}
}
