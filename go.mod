module caft

go 1.24
