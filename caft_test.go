package caft

import (
	"math"
	"math/rand"
	"testing"
)

// TestFacadeEndToEnd drives the whole public API surface as a
// downstream user would.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewDAG(4)
	g.AddEdge(0, 1, 40)
	g.AddEdge(0, 2, 60)
	g.AddEdge(1, 3, 50)
	g.AddEdge(2, 3, 30)
	plat := NewRandomPlatform(rng, 4, 0.5, 1.0)
	exec := GenExecForGranularity(rng, g, plat, 1.0)
	p := &Problem{G: g, Plat: plat, Exec: exec}

	schedulers := map[string]func() (*Schedule, error){
		"caft":  func() (*Schedule, error) { return ScheduleCAFT(p, 1, rng) },
		"ftsa":  func() (*Schedule, error) { return ScheduleFTSA(p, 1, rng) },
		"ftbar": func() (*Schedule, error) { return ScheduleFTBAR(p, 1, rng) },
		"batch": func() (*Schedule, error) { return ScheduleBatchCAFT(p, 1, 3, rng) },
		"greedy": func() (*Schedule, error) {
			return ScheduleCAFTOpts(p, 1, rng, CAFTOptions{Greedy: true})
		},
	}
	for name, build := range schedulers {
		s, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lb, err := LowerBound(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ub, err := UpperBound(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ub < lb {
			t.Fatalf("%s: ub %v < lb %v", name, ub, lb)
		}
		for proc := 0; proc < 4; proc++ {
			if _, err := CrashLatency(s, map[int]bool{proc: true}); err != nil {
				t.Fatalf("%s crash P%d: %v", name, proc, err)
			}
			if _, err := CrashLatencyAt(s, map[int]float64{proc: lb / 2}); err != nil {
				t.Fatalf("%s timed crash P%d: %v", name, proc, err)
			}
		}
		mt := s.ComputeMetrics()
		// 2 mandatory replicas per task; FTBAR's Minimize-Start-Time may
		// add duplicates on top.
		if mt.Replicas < 8 {
			t.Fatalf("%s: %d replicas, want >= 8", name, mt.Replicas)
		}
	}

	sh, err := ScheduleHEFT(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sh.ReplicaCount() != 4 {
		t.Fatalf("HEFT replicas = %d", sh.ReplicaCount())
	}
	hp := NewPlatform(3, 1)
	if hp.M != 3 || hp.Delay[0][1] != 1 {
		t.Fatal("NewPlatform broken")
	}
}

// TestFacadeUnreliability drives the stochastic failure-model surface:
// sampling models, the Monte-Carlo unreliability estimator, and the
// limiting behaviors (never-failing and always-failing platforms).
func TestFacadeUnreliability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewDAG(5)
	g.AddEdge(0, 1, 50)
	g.AddEdge(0, 2, 50)
	g.AddEdge(1, 3, 50)
	g.AddEdge(2, 3, 50)
	g.AddEdge(3, 4, 50)
	plat := NewRandomPlatform(rng, 5, 0.5, 1.0)
	exec := GenExecForGranularity(rng, g, plat, 1.0)
	p := &Problem{G: g, Plat: plat, Exec: exec}
	s, err := ScheduleCAFT(p, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(s)
	if err != nil {
		t.Fatal(err)
	}

	// Rare failures: unreliability must be (near) zero and the surviving
	// latency close to the fault-free one.
	rare := &ExponentialFailures{MTBF: UniformMTBF(rng, 5, 1e6*lb, 2e6*lb)}
	unrel, mean, err := Unreliability(s, rare, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	if unrel > 0.05 {
		t.Fatalf("rare-failure unreliability %v", unrel)
	}
	if mean < lb-1e-6 {
		t.Fatalf("mean latency %v below fault-free %v", mean, lb)
	}

	// Certain immediate loss: a trace crashing every processor at 0.
	all := map[int]float64{}
	for proc := 0; proc < 5; proc++ {
		all[proc] = 0
	}
	doom := &TraceFailures{Scenarios: []map[int]float64{all}}
	unrel, mean, err = Unreliability(s, doom, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if unrel != 1 {
		t.Fatalf("all-crash unreliability %v, want 1", unrel)
	}
	if !math.IsNaN(mean) {
		t.Fatalf("mean latency %v with no survivors, want NaN", mean)
	}

	// Frequent failures land strictly between the two extremes.
	often := &ExponentialFailures{MTBF: UniformMTBF(rng, 5, 2*lb, 3*lb)}
	unrel, _, err = Unreliability(s, often, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	if unrel <= 0 || unrel >= 1 {
		t.Fatalf("frequent-failure unreliability %v, want in (0,1)", unrel)
	}
}
