// Package caft is the public API of the CAFT library: contention-aware
// fault-tolerant scheduling of precedence task graphs on heterogeneous
// platforms under the bidirectional one-port communication model, after
// Benoit, Hakem, Robert (INRIA RR-6606 / ICPP 2008).
//
// The implementation lives in internal packages; this facade re-exports
// the types and entry points a downstream user needs:
//
//	g := caft.NewDAG(4)
//	g.AddEdge(0, 1, 40)                       // edge volumes
//	plat := caft.NewRandomPlatform(rng, 4, 0.5, 1.0)
//	exec := caft.GenExecForGranularity(rng, g, plat, 1.0)
//	p := &caft.Problem{G: g, Plat: plat, Exec: exec}
//	s, err := caft.ScheduleCAFT(p, 1, rng)    // tolerate 1 failure
//	lb, _ := caft.LowerBound(s)
//	lat, _ := caft.CrashLatency(s, map[int]bool{2: true})
//
// A zero Problem.Model is the one-port model and a zero Problem.Policy
// is the paper's append reservation policy; set Problem.Net to a
// topology.Graph for sparse interconnects.
package caft

import (
	"errors"
	"math"
	"math/rand"

	"caft/internal/core"
	"caft/internal/dag"
	"caft/internal/failure"
	"caft/internal/platform"
	"caft/internal/sched"
	"caft/internal/sched/ftbar"
	"caft/internal/sched/ftsa"
	"caft/internal/sched/heft"
	"caft/internal/sched/hoft"
	"caft/internal/sim"
)

// Re-exported model types.
type (
	// DAG is a weighted directed acyclic task graph.
	DAG = dag.DAG
	// TaskID identifies a task in a DAG.
	TaskID = dag.TaskID
	// Edge is a precedence constraint carrying a data volume.
	Edge = dag.Edge
	// Platform is a set of processors with pairwise unit link delays.
	Platform = platform.Platform
	// ExecMatrix holds E(t, P), the execution time of each task on each
	// processor.
	ExecMatrix = platform.ExecMatrix
	// Problem bundles a DAG, a platform, an execution matrix and the
	// communication model.
	Problem = sched.Problem
	// Schedule is an immutable fault-tolerant schedule: replicas and
	// communications with their resource reservations.
	Schedule = sched.Schedule
	// Replica is one scheduled copy of a task.
	Replica = sched.Replica
	// Comm is one scheduled data transfer.
	Comm = sched.Comm
	// Metrics summarizes a schedule's resource usage.
	Metrics = sched.Metrics
	// Network abstracts the interconnect (clique by default).
	Network = sched.Network
	// CAFTOptions tunes the CAFT variants (locking mode, greedy or
	// replicated-only placement).
	CAFTOptions = core.Options
	// ReplayResult holds the replayed times of every replica and
	// communication after fault injection.
	ReplayResult = sim.Result
	// FailureModel samples per-processor crash-time scenarios for the
	// timed fail-stop replay.
	FailureModel = failure.Model
	// ExponentialFailures draws independent memoryless lifetimes with
	// heterogeneous per-processor MTBF.
	ExponentialFailures = failure.Exponential
	// WeibullFailures draws Weibull lifetimes (shape < 1 infant
	// mortality, > 1 wear-out).
	WeibullFailures = failure.Weibull
	// TraceFailures plays back predetermined crash scenarios.
	TraceFailures = failure.Trace
	// RackFailures correlates failures within processor groups (e.g.
	// topology.Racks proximity groups).
	RackFailures = failure.Rack
)

// NewDAG returns a DAG with n unnamed tasks and no edges.
func NewDAG(n int) *DAG { return dag.New(n) }

// NewPlatform returns m fully connected processors with a homogeneous
// unit link delay.
func NewPlatform(m int, delay float64) *Platform { return platform.New(m, delay) }

// NewRandomPlatform draws symmetric unit link delays uniformly from
// [lo, hi] (the paper uses [0.5, 1]).
func NewRandomPlatform(rng *rand.Rand, m int, lo, hi float64) *Platform {
	return platform.NewRandom(rng, m, lo, hi)
}

// GenExecForGranularity builds an execution matrix whose granularity —
// total slowest computation over total slowest communication — hits the
// target exactly.
func GenExecForGranularity(rng *rand.Rand, g *DAG, p *Platform, target float64) ExecMatrix {
	return platform.GenExecForGranularity(rng, g, p, target, platform.DefaultHeterogeneity)
}

// ScheduleCAFT runs the paper's contribution: a schedule tolerating eps
// arbitrary fail-stop processor failures with contention-aware
// replication. eps = 0 reduces to HEFT.
func ScheduleCAFT(p *Problem, eps int, rng *rand.Rand) (*Schedule, error) {
	return core.Schedule(p, eps, rng)
}

// ScheduleCAFTOpts runs a specific CAFT variant (greedy one-to-one,
// replicated-only, or the literal paper locking for ablations).
func ScheduleCAFTOpts(p *Problem, eps int, rng *rand.Rand, opts CAFTOptions) (*Schedule, error) {
	s, _, err := core.ScheduleOpts(p, eps, rng, opts)
	return s, err
}

// ScheduleBatchCAFT runs the windowed batch variant (paper §7).
func ScheduleBatchCAFT(p *Problem, eps, window int, rng *rand.Rand) (*Schedule, error) {
	return core.ScheduleBatch(p, eps, window, rng)
}

// ScheduleFTSA runs the FTSA baseline (fault-tolerant HEFT).
func ScheduleFTSA(p *Problem, eps int, rng *rand.Rand) (*Schedule, error) {
	return ftsa.Schedule(p, eps, rng)
}

// ScheduleFTBAR runs the FTBAR baseline (schedule pressure +
// Minimize-Start-Time).
func ScheduleFTBAR(p *Problem, npf int, rng *rand.Rand) (*Schedule, error) {
	return ftbar.Schedule(p, npf, rng)
}

// ScheduleHEFT runs the fault-free reference scheduler.
func ScheduleHEFT(p *Problem, rng *rand.Rand) (*Schedule, error) {
	return heft.Schedule(p, rng)
}

// ScheduleHOFT runs the fault-free optimistic-finish-time scheduler: a
// HEFT-class list scheduler that ranks and places by the per-(task,
// processor) optimistic finish-time table instead of a single upward
// rank — a one-step lookahead at placement time.
func ScheduleHOFT(p *Problem, rng *rand.Rand) (*Schedule, error) {
	return hoft.Schedule(p, rng)
}

// LowerBound returns the latency achieved when no processor fails.
func LowerBound(s *Schedule) (float64, error) { return sim.LowerBound(s) }

// UpperBound returns the latency guaranteed even when eps processors
// fail (last-arrival replay, completion of the last replica).
func UpperBound(s *Schedule) (float64, error) { return sim.UpperBound(s) }

// CrashLatency replays the schedule with the given fail-stop processors
// and returns the achieved latency; it errors if the crashes exceed the
// schedule's tolerance and a task is lost.
func CrashLatency(s *Schedule, crashed map[int]bool) (float64, error) {
	return sim.CrashLatency(s, crashed)
}

// CrashLatencyAt replays timed fail-stop failures: work completed
// before each processor's crash instant survives.
func CrashLatencyAt(s *Schedule, crashTimes map[int]float64) (float64, error) {
	return sim.CrashLatencyAt(s, crashTimes)
}

// UniformMTBF draws a heterogeneous per-processor MTBF vector uniform
// in [lo, hi], for the failure models.
func UniformMTBF(rng *rand.Rand, m int, lo, hi float64) []float64 {
	return failure.UniformMTBF(rng, m, lo, hi)
}

// Unreliability estimates by Monte Carlo the probability that the
// schedule loses a task under the failure model: n crash-time
// scenarios are sampled and replayed with timed fail-stop semantics on
// a reused replayer. It returns the loss fraction and the mean latency
// over the surviving scenarios (NaN if none survived). An engine
// failure (any replay error that is not a task loss) aborts the
// estimate rather than being blamed on the schedule.
func Unreliability(s *Schedule, model FailureModel, n int, rng *rand.Rand) (unrel, meanLatency float64, err error) {
	rep, err := sim.NewReplayer(s)
	if err != nil {
		return 0, 0, err
	}
	lost, survived := 0, 0
	latSum := 0.0
	scratch := map[int]float64{}
	for i := 0; i < n; i++ {
		lat, err := rep.CrashLatencyAt(model.Sample(rng, scratch))
		switch {
		case errors.Is(err, sim.ErrTaskLost):
			lost++
		case err != nil:
			return 0, 0, err
		default:
			survived++
			latSum += lat
		}
	}
	if n > 0 {
		unrel = float64(lost) / float64(n)
	}
	if survived > 0 {
		meanLatency = latSum / float64(survived)
	} else {
		meanLatency = math.NaN()
	}
	return unrel, meanLatency, nil
}
